/root/repo/target/debug/deps/exrec_interact-eedc53d6248a10a1.d: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

/root/repo/target/debug/deps/exrec_interact-eedc53d6248a10a1: crates/interact/src/lib.rs crates/interact/src/critiquing.rs crates/interact/src/mode.rs crates/interact/src/opinions.rs crates/interact/src/profile.rs crates/interact/src/requirements.rs crates/interact/src/session.rs crates/interact/src/store.rs

crates/interact/src/lib.rs:
crates/interact/src/critiquing.rs:
crates/interact/src/mode.rs:
crates/interact/src/opinions.rs:
crates/interact/src/profile.rs:
crates/interact/src/requirements.rs:
crates/interact/src/session.rs:
crates/interact/src/store.rs:

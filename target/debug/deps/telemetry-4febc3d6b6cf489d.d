/root/repo/target/debug/deps/telemetry-4febc3d6b6cf489d.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-4febc3d6b6cf489d: tests/telemetry.rs

tests/telemetry.rs:

/root/repo/target/debug/deps/persistence-141ecd4be2482819.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-141ecd4be2482819: tests/persistence.rs

tests/persistence.rs:

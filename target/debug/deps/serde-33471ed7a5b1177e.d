/root/repo/target/debug/deps/serde-33471ed7a5b1177e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-33471ed7a5b1177e: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:

/root/repo/target/debug/deps/exrec_obs-df61d90416230ca7.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/exrec_obs-df61d90416230ca7: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:

/root/repo/target/debug/deps/seed_sweep_tmp-ac2ff17d82049390.d: crates/eval/tests/seed_sweep_tmp.rs

/root/repo/target/debug/deps/seed_sweep_tmp-ac2ff17d82049390: crates/eval/tests/seed_sweep_tmp.rs

crates/eval/tests/seed_sweep_tmp.rs:

/root/repo/target/debug/deps/explain-02010c97267eff13.d: crates/bench/benches/explain.rs Cargo.toml

/root/repo/target/debug/deps/libexplain-02010c97267eff13.rmeta: crates/bench/benches/explain.rs Cargo.toml

crates/bench/benches/explain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-179bf521623f622c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-179bf521623f622c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

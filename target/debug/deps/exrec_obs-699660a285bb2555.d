/root/repo/target/debug/deps/exrec_obs-699660a285bb2555.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libexrec_obs-699660a285bb2555.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libexrec_obs-699660a285bb2555.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:

/root/repo/target/debug/deps/exrec_bench-5fb1a9abeba72cc5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/exrec_bench-5fb1a9abeba72cc5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/exrec_bench-4c3e56aee88be38b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libexrec_bench-4c3e56aee88be38b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libexrec_bench-4c3e56aee88be38b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/study_shapes-f9276f71186e63c1.d: tests/study_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_shapes-f9276f71186e63c1.rmeta: tests/study_shapes.rs Cargo.toml

tests/study_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

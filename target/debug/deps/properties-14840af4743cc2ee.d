/root/repo/target/debug/deps/properties-14840af4743cc2ee.d: tests/properties.rs

/root/repo/target/debug/deps/properties-14840af4743cc2ee: tests/properties.rs

tests/properties.rs:

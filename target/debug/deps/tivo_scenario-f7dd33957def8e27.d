/root/repo/target/debug/deps/tivo_scenario-f7dd33957def8e27.d: tests/tivo_scenario.rs

/root/repo/target/debug/deps/tivo_scenario-f7dd33957def8e27: tests/tivo_scenario.rs

tests/tivo_scenario.rs:

/root/repo/target/debug/deps/serde_json-f60337123f1ab622.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-f60337123f1ab622: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

/root/repo/target/debug/deps/exrec_eval-1d40c6f9abde7fd3.d: crates/eval/src/lib.rs crates/eval/src/questionnaire.rs crates/eval/src/report.rs crates/eval/src/simuser.rs crates/eval/src/stats.rs crates/eval/src/studies/mod.rs crates/eval/src/studies/accuracy.rs crates/eval/src/studies/effectiveness.rs crates/eval/src/studies/efficiency.rs crates/eval/src/studies/modality.rs crates/eval/src/studies/persuasion_herlocker.rs crates/eval/src/studies/rating_shift.rs crates/eval/src/studies/satisfaction.rs crates/eval/src/studies/scrutability.rs crates/eval/src/studies/tradeoffs.rs crates/eval/src/studies/transparency.rs crates/eval/src/studies/trust_loyalty.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_eval-1d40c6f9abde7fd3.rmeta: crates/eval/src/lib.rs crates/eval/src/questionnaire.rs crates/eval/src/report.rs crates/eval/src/simuser.rs crates/eval/src/stats.rs crates/eval/src/studies/mod.rs crates/eval/src/studies/accuracy.rs crates/eval/src/studies/effectiveness.rs crates/eval/src/studies/efficiency.rs crates/eval/src/studies/modality.rs crates/eval/src/studies/persuasion_herlocker.rs crates/eval/src/studies/rating_shift.rs crates/eval/src/studies/satisfaction.rs crates/eval/src/studies/scrutability.rs crates/eval/src/studies/tradeoffs.rs crates/eval/src/studies/transparency.rs crates/eval/src/studies/trust_loyalty.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/questionnaire.rs:
crates/eval/src/report.rs:
crates/eval/src/simuser.rs:
crates/eval/src/stats.rs:
crates/eval/src/studies/mod.rs:
crates/eval/src/studies/accuracy.rs:
crates/eval/src/studies/effectiveness.rs:
crates/eval/src/studies/efficiency.rs:
crates/eval/src/studies/modality.rs:
crates/eval/src/studies/persuasion_herlocker.rs:
crates/eval/src/studies/rating_shift.rs:
crates/eval/src/studies/satisfaction.rs:
crates/eval/src/studies/scrutability.rs:
crates/eval/src/studies/tradeoffs.rs:
crates/eval/src/studies/transparency.rs:
crates/eval/src/studies/trust_loyalty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

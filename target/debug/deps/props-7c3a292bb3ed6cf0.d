/root/repo/target/debug/deps/props-7c3a292bb3ed6cf0.d: crates/types/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-7c3a292bb3ed6cf0.rmeta: crates/types/tests/props.rs Cargo.toml

crates/types/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

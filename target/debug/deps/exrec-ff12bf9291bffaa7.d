/root/repo/target/debug/deps/exrec-ff12bf9291bffaa7.d: src/lib.rs

/root/repo/target/debug/deps/exrec-ff12bf9291bffaa7: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/studies-e436dc8fc0804711.d: crates/bench/benches/studies.rs Cargo.toml

/root/repo/target/debug/deps/libstudies-e436dc8fc0804711.rmeta: crates/bench/benches/studies.rs Cargo.toml

crates/bench/benches/studies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/props-fd7fcd25a24d6274.d: crates/eval/tests/props.rs

/root/repo/target/debug/deps/props-fd7fcd25a24d6274: crates/eval/tests/props.rs

crates/eval/tests/props.rs:

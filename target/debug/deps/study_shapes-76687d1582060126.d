/root/repo/target/debug/deps/study_shapes-76687d1582060126.d: tests/study_shapes.rs

/root/repo/target/debug/deps/study_shapes-76687d1582060126: tests/study_shapes.rs

tests/study_shapes.rs:

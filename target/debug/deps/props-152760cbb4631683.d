/root/repo/target/debug/deps/props-152760cbb4631683.d: crates/core/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-152760cbb4631683.rmeta: crates/core/tests/props.rs Cargo.toml

crates/core/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exrec_data-de259c5818666db1.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/csv.rs crates/data/src/matrix.rs crates/data/src/snapshot.rs crates/data/src/split.rs crates/data/src/synth/mod.rs crates/data/src/synth/books.rs crates/data/src/synth/cameras.rs crates/data/src/synth/holidays.rs crates/data/src/synth/movies.rs crates/data/src/synth/names.rs crates/data/src/synth/news.rs crates/data/src/synth/restaurants.rs crates/data/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_data-de259c5818666db1.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/csv.rs crates/data/src/matrix.rs crates/data/src/snapshot.rs crates/data/src/split.rs crates/data/src/synth/mod.rs crates/data/src/synth/books.rs crates/data/src/synth/cameras.rs crates/data/src/synth/holidays.rs crates/data/src/synth/movies.rs crates/data/src/synth/names.rs crates/data/src/synth/news.rs crates/data/src/synth/restaurants.rs crates/data/src/text.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/csv.rs:
crates/data/src/matrix.rs:
crates/data/src/snapshot.rs:
crates/data/src/split.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/books.rs:
crates/data/src/synth/cameras.rs:
crates/data/src/synth/holidays.rs:
crates/data/src/synth/movies.rs:
crates/data/src/synth/names.rs:
crates/data/src/synth/news.rs:
crates/data/src/synth/restaurants.rs:
crates/data/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

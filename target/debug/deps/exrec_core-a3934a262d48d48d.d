/root/repo/target/debug/deps/exrec_core-a3934a262d48d48d.d: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs

/root/repo/target/debug/deps/libexrec_core-a3934a262d48d48d.rlib: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs

/root/repo/target/debug/deps/libexrec_core-a3934a262d48d48d.rmeta: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs

crates/core/src/lib.rs:
crates/core/src/aims.rs:
crates/core/src/engine.rs:
crates/core/src/explanation.rs:
crates/core/src/group.rs:
crates/core/src/influence.rs:
crates/core/src/interfaces/mod.rs:
crates/core/src/interfaces/generators.rs:
crates/core/src/modality.rs:
crates/core/src/personality.rs:
crates/core/src/provenance.rs:
crates/core/src/render.rs:
crates/core/src/similexp.rs:
crates/core/src/style.rs:
crates/core/src/templates.rs:

/root/repo/target/debug/deps/exrec-d4fd89806b363e91.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libexrec-d4fd89806b363e91.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exrec_registry-011fba132094f711.d: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/debug/deps/libexrec_registry-011fba132094f711.rlib: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/debug/deps/libexrec_registry-011fba132094f711.rmeta: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

crates/registry/src/lib.rs:
crates/registry/src/live.rs:
crates/registry/src/systems.rs:
crates/registry/src/tables.rs:

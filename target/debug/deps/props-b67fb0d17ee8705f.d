/root/repo/target/debug/deps/props-b67fb0d17ee8705f.d: crates/interact/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-b67fb0d17ee8705f.rmeta: crates/interact/tests/props.rs Cargo.toml

crates/interact/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/props-43e0b2949a89ea11.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-43e0b2949a89ea11: crates/core/tests/props.rs

crates/core/tests/props.rs:

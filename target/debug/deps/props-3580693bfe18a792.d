/root/repo/target/debug/deps/props-3580693bfe18a792.d: crates/present/tests/props.rs

/root/repo/target/debug/deps/props-3580693bfe18a792: crates/present/tests/props.rs

crates/present/tests/props.rs:

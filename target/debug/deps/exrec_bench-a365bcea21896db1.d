/root/repo/target/debug/deps/exrec_bench-a365bcea21896db1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libexrec_bench-a365bcea21896db1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libexrec_bench-a365bcea21896db1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

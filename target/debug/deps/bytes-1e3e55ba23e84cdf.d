/root/repo/target/debug/deps/bytes-1e3e55ba23e84cdf.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-1e3e55ba23e84cdf.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-1e3e55ba23e84cdf.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

/root/repo/target/debug/deps/exrec_registry-6660c4b82b45fa3e.d: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_registry-6660c4b82b45fa3e.rmeta: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs Cargo.toml

crates/registry/src/lib.rs:
crates/registry/src/live.rs:
crates/registry/src/systems.rs:
crates/registry/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-45a9d7ab9711c9b4.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-45a9d7ab9711c9b4: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

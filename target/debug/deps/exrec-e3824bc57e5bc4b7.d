/root/repo/target/debug/deps/exrec-e3824bc57e5bc4b7.d: src/lib.rs

/root/repo/target/debug/deps/libexrec-e3824bc57e5bc4b7.rlib: src/lib.rs

/root/repo/target/debug/deps/libexrec-e3824bc57e5bc4b7.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/exrec_obs-b605a6b11368de2f.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_obs-b605a6b11368de2f.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/properties-d443965334fcb953.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d443965334fcb953: tests/properties.rs

tests/properties.rs:

/root/repo/target/debug/deps/exrec-6dd6421b9f6da206.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libexrec-6dd6421b9f6da206.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/pipeline-51c57b541fc55ef5.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-51c57b541fc55ef5: tests/pipeline.rs

tests/pipeline.rs:

/root/repo/target/debug/deps/exrec_bench-b78f61299ab7b70b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_bench-b78f61299ab7b70b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

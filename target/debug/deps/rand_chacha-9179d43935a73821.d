/root/repo/target/debug/deps/rand_chacha-9179d43935a73821.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-9179d43935a73821: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:

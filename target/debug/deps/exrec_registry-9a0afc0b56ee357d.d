/root/repo/target/debug/deps/exrec_registry-9a0afc0b56ee357d.d: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/debug/deps/libexrec_registry-9a0afc0b56ee357d.rlib: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/debug/deps/libexrec_registry-9a0afc0b56ee357d.rmeta: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

crates/registry/src/lib.rs:
crates/registry/src/live.rs:
crates/registry/src/systems.rs:
crates/registry/src/tables.rs:

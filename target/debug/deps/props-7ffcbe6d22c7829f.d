/root/repo/target/debug/deps/props-7ffcbe6d22c7829f.d: crates/interact/tests/props.rs

/root/repo/target/debug/deps/props-7ffcbe6d22c7829f: crates/interact/tests/props.rs

crates/interact/tests/props.rs:

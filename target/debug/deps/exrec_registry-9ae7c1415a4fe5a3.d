/root/repo/target/debug/deps/exrec_registry-9ae7c1415a4fe5a3.d: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

/root/repo/target/debug/deps/exrec_registry-9ae7c1415a4fe5a3: crates/registry/src/lib.rs crates/registry/src/live.rs crates/registry/src/systems.rs crates/registry/src/tables.rs

crates/registry/src/lib.rs:
crates/registry/src/live.rs:
crates/registry/src/systems.rs:
crates/registry/src/tables.rs:

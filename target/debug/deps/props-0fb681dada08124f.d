/root/repo/target/debug/deps/props-0fb681dada08124f.d: crates/interact/tests/props.rs

/root/repo/target/debug/deps/props-0fb681dada08124f: crates/interact/tests/props.rs

crates/interact/tests/props.rs:

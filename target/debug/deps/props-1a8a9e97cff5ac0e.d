/root/repo/target/debug/deps/props-1a8a9e97cff5ac0e.d: crates/eval/tests/props.rs

/root/repo/target/debug/deps/props-1a8a9e97cff5ac0e: crates/eval/tests/props.rs

crates/eval/tests/props.rs:

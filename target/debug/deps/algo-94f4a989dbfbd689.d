/root/repo/target/debug/deps/algo-94f4a989dbfbd689.d: crates/bench/benches/algo.rs Cargo.toml

/root/repo/target/debug/deps/libalgo-94f4a989dbfbd689.rmeta: crates/bench/benches/algo.rs Cargo.toml

crates/bench/benches/algo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

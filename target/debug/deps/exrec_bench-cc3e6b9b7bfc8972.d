/root/repo/target/debug/deps/exrec_bench-cc3e6b9b7bfc8972.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/exrec_bench-cc3e6b9b7bfc8972: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/serde_json-f88dd66f788bcbf1.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f88dd66f788bcbf1.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f88dd66f788bcbf1.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

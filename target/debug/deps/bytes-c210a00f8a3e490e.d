/root/repo/target/debug/deps/bytes-c210a00f8a3e490e.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-c210a00f8a3e490e.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

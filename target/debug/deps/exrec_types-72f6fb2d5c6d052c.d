/root/repo/target/debug/deps/exrec_types-72f6fb2d5c6d052c.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libexrec_types-72f6fb2d5c6d052c.rlib: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

/root/repo/target/debug/deps/libexrec_types-72f6fb2d5c6d052c.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/domain.rs crates/types/src/error.rs crates/types/src/id.rs crates/types/src/rating.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/domain.rs:
crates/types/src/error.rs:
crates/types/src/id.rs:
crates/types/src/rating.rs:
crates/types/src/time.rs:

/root/repo/target/debug/deps/props-16ff9433770f7ae6.d: crates/types/tests/props.rs

/root/repo/target/debug/deps/props-16ff9433770f7ae6: crates/types/tests/props.rs

crates/types/tests/props.rs:

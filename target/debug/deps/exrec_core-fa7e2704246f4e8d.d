/root/repo/target/debug/deps/exrec_core-fa7e2704246f4e8d.d: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs Cargo.toml

/root/repo/target/debug/deps/libexrec_core-fa7e2704246f4e8d.rmeta: crates/core/src/lib.rs crates/core/src/aims.rs crates/core/src/engine.rs crates/core/src/explanation.rs crates/core/src/group.rs crates/core/src/influence.rs crates/core/src/interfaces/mod.rs crates/core/src/interfaces/generators.rs crates/core/src/modality.rs crates/core/src/personality.rs crates/core/src/provenance.rs crates/core/src/render.rs crates/core/src/similexp.rs crates/core/src/style.rs crates/core/src/templates.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aims.rs:
crates/core/src/engine.rs:
crates/core/src/explanation.rs:
crates/core/src/group.rs:
crates/core/src/influence.rs:
crates/core/src/interfaces/mod.rs:
crates/core/src/interfaces/generators.rs:
crates/core/src/modality.rs:
crates/core/src/personality.rs:
crates/core/src/provenance.rs:
crates/core/src/render.rs:
crates/core/src/similexp.rs:
crates/core/src/style.rs:
crates/core/src/templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

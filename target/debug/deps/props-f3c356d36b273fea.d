/root/repo/target/debug/deps/props-f3c356d36b273fea.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-f3c356d36b273fea: crates/core/tests/props.rs

crates/core/tests/props.rs:

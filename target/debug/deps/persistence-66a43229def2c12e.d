/root/repo/target/debug/deps/persistence-66a43229def2c12e.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-66a43229def2c12e: tests/persistence.rs

tests/persistence.rs:

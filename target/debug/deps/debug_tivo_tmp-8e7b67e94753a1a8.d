/root/repo/target/debug/deps/debug_tivo_tmp-8e7b67e94753a1a8.d: tests/debug_tivo_tmp.rs

/root/repo/target/debug/deps/debug_tivo_tmp-8e7b67e94753a1a8: tests/debug_tivo_tmp.rs

tests/debug_tivo_tmp.rs:

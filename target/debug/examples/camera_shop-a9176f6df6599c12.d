/root/repo/target/debug/examples/camera_shop-a9176f6df6599c12.d: examples/camera_shop.rs

/root/repo/target/debug/examples/camera_shop-a9176f6df6599c12: examples/camera_shop.rs

examples/camera_shop.rs:

/root/repo/target/debug/examples/book_club-8431e746ce3e6848.d: examples/book_club.rs

/root/repo/target/debug/examples/book_club-8431e746ce3e6848: examples/book_club.rs

examples/book_club.rs:

/root/repo/target/debug/examples/scrutable_holiday-6f1333365b7e2a41.d: examples/scrutable_holiday.rs

/root/repo/target/debug/examples/scrutable_holiday-6f1333365b7e2a41: examples/scrutable_holiday.rs

examples/scrutable_holiday.rs:

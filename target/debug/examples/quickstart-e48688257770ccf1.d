/root/repo/target/debug/examples/quickstart-e48688257770ccf1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e48688257770ccf1: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/camera_shop-0824717c0806ae16.d: examples/camera_shop.rs Cargo.toml

/root/repo/target/debug/examples/libcamera_shop-0824717c0806ae16.rmeta: examples/camera_shop.rs Cargo.toml

examples/camera_shop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/systems_gallery-87918cd6cce780c5.d: examples/systems_gallery.rs Cargo.toml

/root/repo/target/debug/examples/libsystems_gallery-87918cd6cce780c5.rmeta: examples/systems_gallery.rs Cargo.toml

examples/systems_gallery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

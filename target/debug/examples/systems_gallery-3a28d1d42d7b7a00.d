/root/repo/target/debug/examples/systems_gallery-3a28d1d42d7b7a00.d: examples/systems_gallery.rs

/root/repo/target/debug/examples/systems_gallery-3a28d1d42d7b7a00: examples/systems_gallery.rs

examples/systems_gallery.rs:

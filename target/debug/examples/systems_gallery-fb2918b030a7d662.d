/root/repo/target/debug/examples/systems_gallery-fb2918b030a7d662.d: examples/systems_gallery.rs

/root/repo/target/debug/examples/systems_gallery-fb2918b030a7d662: examples/systems_gallery.rs

examples/systems_gallery.rs:

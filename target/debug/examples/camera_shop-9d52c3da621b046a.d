/root/repo/target/debug/examples/camera_shop-9d52c3da621b046a.d: examples/camera_shop.rs

/root/repo/target/debug/examples/camera_shop-9d52c3da621b046a: examples/camera_shop.rs

examples/camera_shop.rs:

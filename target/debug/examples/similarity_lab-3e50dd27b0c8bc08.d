/root/repo/target/debug/examples/similarity_lab-3e50dd27b0c8bc08.d: examples/similarity_lab.rs

/root/repo/target/debug/examples/similarity_lab-3e50dd27b0c8bc08: examples/similarity_lab.rs

examples/similarity_lab.rs:

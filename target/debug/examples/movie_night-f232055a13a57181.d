/root/repo/target/debug/examples/movie_night-f232055a13a57181.d: examples/movie_night.rs

/root/repo/target/debug/examples/movie_night-f232055a13a57181: examples/movie_night.rs

examples/movie_night.rs:

/root/repo/target/debug/examples/quickstart-0197268a6a532804.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0197268a6a532804: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/telemetry-ebcace57714ab5b6.d: examples/telemetry.rs

/root/repo/target/debug/examples/telemetry-ebcace57714ab5b6: examples/telemetry.rs

examples/telemetry.rs:

/root/repo/target/debug/examples/similarity_lab-9914d6883cff8127.d: examples/similarity_lab.rs Cargo.toml

/root/repo/target/debug/examples/libsimilarity_lab-9914d6883cff8127.rmeta: examples/similarity_lab.rs Cargo.toml

examples/similarity_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/news_desk-1824452f5ee8c3e3.d: examples/news_desk.rs

/root/repo/target/debug/examples/news_desk-1824452f5ee8c3e3: examples/news_desk.rs

examples/news_desk.rs:

/root/repo/target/debug/examples/quickstart-bc603fbde1e356eb.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-bc603fbde1e356eb.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/movie_night-9c18e1e68778f8d7.d: examples/movie_night.rs

/root/repo/target/debug/examples/movie_night-9c18e1e68778f8d7: examples/movie_night.rs

examples/movie_night.rs:

/root/repo/target/debug/examples/scrutable_holiday-aa8a36c49acf2453.d: examples/scrutable_holiday.rs

/root/repo/target/debug/examples/scrutable_holiday-aa8a36c49acf2453: examples/scrutable_holiday.rs

examples/scrutable_holiday.rs:

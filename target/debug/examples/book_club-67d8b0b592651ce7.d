/root/repo/target/debug/examples/book_club-67d8b0b592651ce7.d: examples/book_club.rs Cargo.toml

/root/repo/target/debug/examples/libbook_club-67d8b0b592651ce7.rmeta: examples/book_club.rs Cargo.toml

examples/book_club.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/similarity_lab-d52d18f4053e26e4.d: examples/similarity_lab.rs

/root/repo/target/debug/examples/similarity_lab-d52d18f4053e26e4: examples/similarity_lab.rs

examples/similarity_lab.rs:

/root/repo/target/debug/examples/movie_night-a0030abe5efa8922.d: examples/movie_night.rs Cargo.toml

/root/repo/target/debug/examples/libmovie_night-a0030abe5efa8922.rmeta: examples/movie_night.rs Cargo.toml

examples/movie_night.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/scrutable_holiday-8ee3a7904bd2c5ee.d: examples/scrutable_holiday.rs Cargo.toml

/root/repo/target/debug/examples/libscrutable_holiday-8ee3a7904bd2c5ee.rmeta: examples/scrutable_holiday.rs Cargo.toml

examples/scrutable_holiday.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/news_desk-fa1aafa5ff3e64f0.d: examples/news_desk.rs

/root/repo/target/debug/examples/news_desk-fa1aafa5ff3e64f0: examples/news_desk.rs

examples/news_desk.rs:

/root/repo/target/debug/examples/book_club-8988ddef6e5508ea.d: examples/book_club.rs

/root/repo/target/debug/examples/book_club-8988ddef6e5508ea: examples/book_club.rs

examples/book_club.rs:

/root/repo/target/debug/examples/news_desk-bc5bd6d91cfe3a25.d: examples/news_desk.rs Cargo.toml

/root/repo/target/debug/examples/libnews_desk-bc5bd6d91cfe3a25.rmeta: examples/news_desk.rs Cargo.toml

examples/news_desk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
